package wal

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/store"
	"repro/internal/txn"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []*Record{
		{Type: TypeWrite, TxnID: 7, ObjectID: 42, AfterImage: []byte("after")},
		{Type: TypeWrite, TxnID: 7, ObjectID: 43, AfterImage: nil},
		{Type: TypeCommit, TxnID: 7, SerialOrder: 3, CommitTS: 65536},
		{Type: TypeAbort, TxnID: 9},
		{Type: TypeHeartbeat},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		if err := Encode(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range recs {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Type != want.Type || got.TxnID != want.TxnID ||
			got.SerialOrder != want.SerialOrder || got.CommitTS != want.CommitTS ||
			got.ObjectID != want.ObjectID || !bytes.Equal(got.AfterImage, want.AfterImage) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := Decode(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(txnID uint32, serial, ts uint64, obj uint32, img []byte) bool {
		want := &Record{Type: TypeWrite, TxnID: txn.ID(txnID), SerialOrder: serial,
			CommitTS: ts, ObjectID: store.ObjectID(obj), AfterImage: img}
		var buf bytes.Buffer
		if err := Encode(&buf, want); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return got.TxnID == want.TxnID && got.SerialOrder == want.SerialOrder &&
			got.CommitTS == want.CommitTS && got.ObjectID == want.ObjectID &&
			bytes.Equal(got.AfterImage, want.AfterImage)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	rec := &Record{Type: TypeWrite, TxnID: 1, ObjectID: 2, AfterImage: []byte("payload")}
	enc := AppendEncoded(nil, rec)
	// Flip one byte anywhere after the CRC field: must be detected.
	for pos := 4; pos < len(enc); pos++ {
		damaged := append([]byte(nil), enc...)
		damaged[pos] ^= 0xff
		_, err := Decode(bytes.NewReader(damaged))
		if err == nil {
			t.Fatalf("corruption at byte %d not detected", pos)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	rec := &Record{Type: TypeWrite, TxnID: 1, ObjectID: 2, AfterImage: []byte("payload")}
	enc := AppendEncoded(nil, rec)
	for cut := 1; cut < len(enc); cut++ {
		_, err := Decode(bytes.NewReader(enc[:cut]))
		if err != io.ErrUnexpectedEOF && err != ErrCorrupt {
			t.Fatalf("cut at %d: err = %v", cut, err)
		}
	}
}

func TestDecodeRejectsHugeImage(t *testing.T) {
	rec := &Record{Type: TypeWrite, TxnID: 1, AfterImage: []byte("x")}
	enc := AppendEncoded(nil, rec)
	// Forge an enormous length field.
	enc[4], enc[5], enc[6], enc[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Decode(bytes.NewReader(enc)); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestRecordsForTransaction(t *testing.T) {
	tx := txn.New(5, txn.Firm, 0, txn.NoDeadline)
	tx.StageWrite(10, []byte("a"))
	tx.StageWrite(11, []byte("b"))
	tx.CommitTS = 99
	tx.SerialOrder = 4
	writes := WriteRecordsFor(tx)
	if len(writes) != 2 || writes[0].ObjectID != 10 || writes[1].ObjectID != 11 {
		t.Fatalf("writes = %v", writes)
	}
	c := CommitRecordFor(tx)
	if c.Type != TypeCommit || c.SerialOrder != 4 || c.CommitTS != 99 || c.TxnID != 5 {
		t.Fatalf("commit = %+v", c)
	}
}

func TestEncodedSize(t *testing.T) {
	r := &Record{Type: TypeWrite, AfterImage: make([]byte, 100)}
	if EncodedSize(r) != headerSize+100 {
		t.Fatalf("EncodedSize = %d", EncodedSize(r))
	}
	if len(AppendEncoded(nil, r)) != EncodedSize(r) {
		t.Fatal("AppendEncoded length disagrees with EncodedSize")
	}
}

func TestStringers(t *testing.T) {
	for _, r := range []*Record{
		{Type: TypeWrite}, {Type: TypeCommit}, {Type: TypeAbort},
		{Type: TypeHeartbeat}, {Type: Type(9)},
	} {
		if r.String() == "" {
			t.Fatal("empty record string")
		}
	}
	for _, ty := range []Type{TypeWrite, TypeCommit, TypeAbort, TypeHeartbeat, Type(9)} {
		if ty.String() == "" {
			t.Fatal("empty type string")
		}
	}
}

// --- Reorderer ---------------------------------------------------------------

func commitRec(id txn.ID, serial uint64) *Record {
	return &Record{Type: TypeCommit, TxnID: id, SerialOrder: serial, CommitTS: serial * 100}
}

func writeRec(id txn.ID, obj store.ObjectID) *Record {
	return &Record{Type: TypeWrite, TxnID: id, ObjectID: obj, AfterImage: []byte{byte(id)}}
}

func TestReordererGroupsByTransaction(t *testing.T) {
	r := NewReorderer(0)
	addEmpty(t, r, writeRec(1, 10))
	addEmpty(t, r, writeRec(2, 20))
	addEmpty(t, r, writeRec(1, 11))
	groups, err := r.Add(commitRec(1, 1))
	if err != nil || len(groups) != 1 {
		t.Fatalf("groups = %v err = %v", groups, err)
	}
	g := groups[0]
	if len(g.Writes) != 2 || g.Writes[0].ObjectID != 10 || g.Writes[1].ObjectID != 11 {
		t.Fatalf("group writes = %v", g.Writes)
	}
	if g.SerialOrder() != 1 {
		t.Fatalf("serial = %d", g.SerialOrder())
	}
	if r.PendingTxns() != 1 { // txn 2 still open
		t.Fatalf("PendingTxns = %d", r.PendingTxns())
	}
}

func TestReordererReleasesInSerialOrder(t *testing.T) {
	r := NewReorderer(0)
	// Commit records arrive out of validation order: 2 before 1.
	addEmpty(t, r, writeRec(2, 20))
	groups, err := r.Add(commitRec(2, 2))
	if err != nil || len(groups) != 0 {
		t.Fatalf("serial 2 must be held until serial 1 arrives: %v", groups)
	}
	addEmpty(t, r, writeRec(1, 10))
	groups, err = r.Add(commitRec(1, 1))
	if err != nil || len(groups) != 2 {
		t.Fatalf("groups = %v err = %v", groups, err)
	}
	if groups[0].SerialOrder() != 1 || groups[1].SerialOrder() != 2 {
		t.Fatalf("release order = %d, %d", groups[0].SerialOrder(), groups[1].SerialOrder())
	}
	if r.Buffered() != 0 {
		t.Fatalf("Buffered = %d", r.Buffered())
	}
}

func TestReordererAbortDropsWrites(t *testing.T) {
	r := NewReorderer(0)
	addEmpty(t, r, writeRec(1, 10))
	addEmpty(t, r, &Record{Type: TypeAbort, TxnID: 1})
	if r.PendingTxns() != 0 || r.Buffered() != 0 {
		t.Fatalf("abort did not clear: pending=%d buffered=%d", r.PendingTxns(), r.Buffered())
	}
}

func TestReordererHeartbeatIgnored(t *testing.T) {
	r := NewReorderer(0)
	groups, err := r.Add(&Record{Type: TypeHeartbeat})
	if err != nil || groups != nil {
		t.Fatalf("heartbeat: %v %v", groups, err)
	}
}

func TestReordererUnknownType(t *testing.T) {
	r := NewReorderer(0)
	if _, err := r.Add(&Record{Type: Type(99)}); err == nil {
		t.Fatal("unknown record type accepted")
	}
}

func TestReordererDiscardPending(t *testing.T) {
	r := NewReorderer(0)
	addEmpty(t, r, writeRec(1, 10))
	addEmpty(t, r, writeRec(2, 20))
	if n := r.DiscardPending(); n != 2 {
		t.Fatalf("DiscardPending = %d", n)
	}
	if r.Buffered() != 0 {
		t.Fatalf("Buffered = %d", r.Buffered())
	}
}

func TestReordererStartSerial(t *testing.T) {
	r := NewReorderer(5)
	groups, _ := r.Add(commitRec(1, 6))
	if len(groups) != 0 {
		t.Fatal("serial 6 released before serial 5")
	}
	groups, _ = r.Add(commitRec(2, 5))
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
}

// Property: feeding groups in any interleaving releases them in exactly
// serial order 1..n with the right writes attached.
func TestPropertyReordererTotalOrder(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int(n%20) + 1
		// Build per-transaction record lists.
		type src struct {
			recs []*Record
		}
		srcs := make([]*src, total)
		for i := 0; i < total; i++ {
			s := &src{}
			id := txn.ID(i + 1)
			for w := 0; w < rng.Intn(4); w++ {
				s.recs = append(s.recs, writeRec(id, store.ObjectID(w)))
			}
			s.recs = append(s.recs, commitRec(id, uint64(i+1)))
			srcs[i] = s
		}
		// Interleave: repeatedly pick a source with records left; its
		// writes stay in order and commit comes last (FIFO per txn).
		r := NewReorderer(0)
		var released []*Group
		remaining := total
		for remaining > 0 {
			i := rng.Intn(total)
			if len(srcs[i].recs) == 0 {
				continue
			}
			rec := srcs[i].recs[0]
			srcs[i].recs = srcs[i].recs[1:]
			if len(srcs[i].recs) == 0 {
				remaining--
			}
			gs, err := r.Add(rec)
			if err != nil {
				return false
			}
			released = append(released, gs...)
		}
		if len(released) != total {
			return false
		}
		for i, g := range released {
			if g.SerialOrder() != uint64(i+1) {
				return false
			}
		}
		return r.Buffered() == 0 && r.PendingTxns() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func addEmpty(t *testing.T, r *Reorderer, rec *Record) {
	t.Helper()
	groups, err := r.Add(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("unexpected release: %v", groups)
	}
}

// --- Recovery ----------------------------------------------------------------

func encodeAll(t *testing.T, recs []*Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		if err := Encode(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestRecoverAppliesCommittedOnly(t *testing.T) {
	log := encodeAll(t, []*Record{
		writeRec(1, 10),
		commitRec(1, 1),
		writeRec(2, 20), // no commit record: txn 2 aborted by failure
		{Type: TypeWrite, TxnID: 3, ObjectID: 30, AfterImage: []byte("three")},
		commitRec(3, 2),
	})
	db := store.New()
	st, err := Recover(bytes.NewReader(log), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 2 || st.WritesApplied != 2 || st.Discarded != 1 || st.Truncated {
		t.Fatalf("stats = %+v", st)
	}
	if st.LastSerial != 2 {
		t.Fatalf("LastSerial = %d", st.LastSerial)
	}
	if _, ok := db.Get(20); ok {
		t.Fatal("uncommitted write applied")
	}
	v, ok := db.Get(30)
	if !ok || string(v) != "three" {
		t.Fatalf("committed write missing: %q %v", v, ok)
	}
}

func TestRecoverTruncatedTail(t *testing.T) {
	log := encodeAll(t, []*Record{
		writeRec(1, 10),
		commitRec(1, 1),
		writeRec(2, 20),
	})
	log = log[:len(log)-3] // crash mid-record
	db := store.New()
	st, err := Recover(bytes.NewReader(log), db)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Applied != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecoverCorruptTailStopsCleanly(t *testing.T) {
	log := encodeAll(t, []*Record{writeRec(1, 10), commitRec(1, 1), writeRec(2, 20), commitRec(2, 2)})
	// Damage the third record's checksum region.
	third := encodeAll(t, []*Record{writeRec(1, 10), commitRec(1, 1)})
	log[len(third)+10] ^= 0xff
	db := store.New()
	st, err := Recover(bytes.NewReader(log), db)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Applied != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecoverRespectsAbortRecords(t *testing.T) {
	log := encodeAll(t, []*Record{
		writeRec(1, 10),
		{Type: TypeAbort, TxnID: 1},
		commitRec(1, 1), // commit after abort applies nothing (writes dropped)
	})
	db := store.New()
	st, err := Recover(bytes.NewReader(log), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.WritesApplied != 0 {
		t.Fatalf("aborted writes applied: %+v", st)
	}
}

// Property: recovery of a log equals direct application of committed
// groups, for any mix of committed and uncommitted transactions.
func TestPropertyRecoveryMatchesDirectApply(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		direct := store.New()
		var recs []*Record
		serial := uint64(0)
		for i := 0; i < 30; i++ {
			id := txn.ID(i + 1)
			nw := rng.Intn(4)
			var writes []*Record
			for w := 0; w < nw; w++ {
				writes = append(writes, &Record{
					Type: TypeWrite, TxnID: id,
					ObjectID:   store.ObjectID(rng.Intn(10)),
					AfterImage: []byte{byte(rng.Intn(256))},
				})
			}
			recs = append(recs, writes...)
			if rng.Intn(100) < 70 { // 70% commit
				serial++
				ts := serial * 7
				recs = append(recs, &Record{Type: TypeCommit, TxnID: id, SerialOrder: serial, CommitTS: ts})
				for _, w := range writes {
					direct.Apply(w.ObjectID, w.AfterImage, ts)
				}
			}
		}
		var buf bytes.Buffer
		for _, r := range recs {
			if Encode(&buf, r) != nil {
				return false
			}
		}
		recovered := store.New()
		if _, err := Recover(&buf, recovered); err != nil {
			return false
		}
		return recovered.Checksum() == direct.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- Checkpoint ----------------------------------------------------------------

func TestCheckpointRoundTrip(t *testing.T) {
	db := store.New()
	for i := 0; i < 50; i++ {
		db.Put(store.ObjectID(i), []byte{byte(i), byte(i + 1)})
	}
	db.Apply(7, []byte("updated"), 123)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, db.Snapshot(), 42); err != nil {
		t.Fatal(err)
	}
	snap, serial, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 42 {
		t.Fatalf("serial = %d", serial)
	}
	db2 := store.New()
	db2.LoadSnapshot(snap)
	if db2.Checksum() != db.Checksum() {
		t.Fatal("checkpoint round trip changed the database")
	}
	_, wts, _ := db2.Timestamps(7)
	if wts != 123 {
		t.Fatalf("write timestamp lost: %d", wts)
	}
}

func TestCheckpointIncomplete(t *testing.T) {
	db := store.New()
	db.Put(1, []byte("v"))
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, db.Snapshot(), 9); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, _, err := ReadCheckpoint(bytes.NewReader(cut)); err != ErrIncompleteCheckpoint {
		t.Fatalf("err = %v, want ErrIncompleteCheckpoint", err)
	}
	if _, _, err := ReadCheckpoint(bytes.NewReader(nil)); err != ErrIncompleteCheckpoint {
		t.Fatalf("empty: err = %v", err)
	}
}
