// Package workload generates the paper's experimental load: a variable
// mix of two transaction types over a number-translation database —
// a simple read-only service-provision transaction that reads a few
// objects and commits, and an update service-provision transaction that
// reads a few objects, updates some of them and commits. Arrivals are
// Poisson; all parameters (arrival rate, write fraction, operations per
// transaction, deadlines) are configurable.
//
// Like the RODAIN prototype, workloads can be generated off-line into a
// test file and replayed through an interface process; see WriteTrace
// and ReadTrace.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/txn"
)

// Config parameterizes a workload.
type Config struct {
	// ArrivalRate is the mean transaction arrival rate, transactions
	// per second (Poisson process).
	ArrivalRate float64
	// WriteFraction is the probability that a transaction is an update
	// service-provision transaction.
	WriteFraction float64
	// DBSize is the number of objects in the database.
	DBSize int
	// ReadsPerTxn is the number of objects a transaction reads.
	ReadsPerTxn int
	// WritesPerTxn is the number of read objects an update transaction
	// rewrites.
	WritesPerTxn int
	// ReadDeadline and WriteDeadline are the relative firm deadlines.
	ReadDeadline  time.Duration
	WriteDeadline time.Duration
	// ValueSize is the after-image size in bytes.
	ValueSize int
	// NonRTFraction is the probability that a transaction has no
	// deadline (runs in the reserved non-real-time share).
	NonRTFraction float64
	// SoftFraction is the probability that a real-time transaction has
	// a soft deadline: it completes late instead of aborting, but the
	// miss is counted.
	SoftFraction float64
	// ChurnFraction is the probability that a transaction is a
	// provisioning-churn transaction: it deprovisions (deletes) one
	// existing service number and provisions (inserts) a fresh one —
	// number ranges being handed back and reassigned.
	ChurnFraction float64
	// Count is the number of transactions in the session.
	Count int
	// Seed makes the trace deterministic.
	Seed int64
}

// Default mirrors the paper's test sessions: 10,000 transactions over a
// 30,000-object number-translation database, 4 reads per transaction,
// 2 updates in write transactions, 50 ms / 150 ms firm deadlines.
func Default() Config {
	return Config{
		ArrivalRate:   200,
		WriteFraction: 0.05,
		DBSize:        30000,
		ReadsPerTxn:   4,
		WritesPerTxn:  2,
		ReadDeadline:  50 * time.Millisecond,
		WriteDeadline: 150 * time.Millisecond,
		ValueSize:     32,
		Count:         10000,
		Seed:          1,
	}
}

// Spec describes one transaction in a trace.
type Spec struct {
	// Arrival is the absolute arrival time.
	Arrival simtime.Time
	// Class is Firm for real-time transactions, NonRealTime otherwise.
	Class txn.Class
	// Deadline is the relative firm deadline (ignored for non-RT).
	Deadline time.Duration
	// Reads are the objects the transaction reads.
	Reads []store.ObjectID
	// Writes are the objects it updates (a subset of Reads for update
	// transactions, empty for read-only ones) or inserts (churn).
	Writes []store.ObjectID
	// Deletes are the objects a churn transaction deprovisions.
	Deletes []store.ObjectID
}

// IsWrite reports whether the spec updates anything.
func (s *Spec) IsWrite() bool { return len(s.Writes) > 0 || len(s.Deletes) > 0 }

// Generator produces Specs deterministically from a Config.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	now    simtime.Time
	n      int
	nextID store.ObjectID // fresh ids for churn inserts
}

// NewGenerator returns a generator for cfg.
func NewGenerator(cfg Config) *Generator {
	if cfg.DBSize <= 0 {
		cfg.DBSize = 1
	}
	if cfg.ReadsPerTxn <= 0 {
		cfg.ReadsPerTxn = 1
	}
	if cfg.WritesPerTxn > cfg.ReadsPerTxn {
		cfg.WritesPerTxn = cfg.ReadsPerTxn
	}
	return &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nextID: store.ObjectID(cfg.DBSize), // insert above the preload range
	}
}

// Next returns the next Spec, or nil when the session is complete.
func (g *Generator) Next() *Spec {
	if g.cfg.Count > 0 && g.n >= g.cfg.Count {
		return nil
	}
	g.n++
	// Poisson arrivals: exponential inter-arrival gaps.
	if g.cfg.ArrivalRate > 0 {
		gap := g.rng.ExpFloat64() / g.cfg.ArrivalRate // seconds
		g.now = g.now.Add(simtime.Duration(gap * float64(time.Second)))
	}
	s := &Spec{Arrival: g.now, Class: txn.Firm}
	if g.cfg.NonRTFraction > 0 && g.rng.Float64() < g.cfg.NonRTFraction {
		s.Class = txn.NonRealTime
	} else if g.cfg.SoftFraction > 0 && g.rng.Float64() < g.cfg.SoftFraction {
		s.Class = txn.Soft
	}
	if g.cfg.ChurnFraction > 0 && g.rng.Float64() < g.cfg.ChurnFraction {
		// Provisioning churn: delete one existing number, insert a
		// fresh one. (The delete target may already be gone — a no-op
		// delete, like re-deprovisioning an unassigned number.)
		s.Deadline = g.cfg.WriteDeadline
		s.Deletes = append(s.Deletes, store.ObjectID(g.rng.Intn(g.cfg.DBSize)))
		s.Writes = append(s.Writes, g.nextID)
		g.nextID++
		return s
	}
	isWrite := g.rng.Float64() < g.cfg.WriteFraction
	if isWrite {
		s.Deadline = g.cfg.WriteDeadline
	} else {
		s.Deadline = g.cfg.ReadDeadline
	}
	// Distinct objects per transaction.
	seen := make(map[store.ObjectID]bool, g.cfg.ReadsPerTxn)
	for len(s.Reads) < g.cfg.ReadsPerTxn {
		id := store.ObjectID(g.rng.Intn(g.cfg.DBSize))
		if seen[id] {
			continue
		}
		seen[id] = true
		s.Reads = append(s.Reads, id)
	}
	if isWrite {
		s.Writes = append(s.Writes, s.Reads[:g.cfg.WritesPerTxn]...)
	}
	return s
}

// All generates the whole session.
func (g *Generator) All() []*Spec {
	var specs []*Spec
	for s := g.Next(); s != nil; s = g.Next() {
		specs = append(specs, s)
	}
	return specs
}

// Value builds a deterministic after image for a write of obj by the
// n-th transaction, size cfg.ValueSize.
func (g *Generator) Value(obj store.ObjectID, n int) []byte {
	size := g.cfg.ValueSize
	if size <= 0 {
		size = 8
	}
	v := make([]byte, size)
	copy(v, fmt.Sprintf("v%d-%d", obj, n))
	return v
}

// Populate fills db with cfg.DBSize objects carrying ValueSize-byte
// initial images, the number-translation test database.
func Populate(db *store.Store, cfg Config) {
	size := cfg.ValueSize
	if size <= 0 {
		size = 8
	}
	for i := 0; i < cfg.DBSize; i++ {
		v := make([]byte, size)
		copy(v, fmt.Sprintf("init-%d", i))
		db.Put(store.ObjectID(i), v)
	}
}

// --- Trace files --------------------------------------------------------------

// WriteTrace writes specs as an off-line test file: one line per
// transaction,
//
//	<arrival-ns> <class> <deadline-ns> <reads: a,b,c> <writes: a,b|->
func WriteTrace(w io.Writer, specs []*Spec) error {
	bw := bufio.NewWriter(w)
	for _, s := range specs {
		class := "firm"
		switch s.Class {
		case txn.NonRealTime:
			class = "nonrt"
		case txn.Soft:
			class = "soft"
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d %s %s %s\n",
			int64(s.Arrival), class, int64(s.Deadline), idList(s.Reads), idList(s.Writes), idList(s.Deletes)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func idList(ids []store.ObjectID) string {
	if len(ids) == 0 {
		return "-"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatUint(uint64(id), 10)
	}
	return strings.Join(parts, ",")
}

// ReadTrace parses a test file written by WriteTrace.
func ReadTrace(r io.Reader) ([]*Spec, error) {
	var specs []*Spec
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 && len(fields) != 6 {
			return nil, fmt.Errorf("workload: trace line %d: want 5 or 6 fields, got %d", lineNo, len(fields))
		}
		arrival, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: arrival: %v", lineNo, err)
		}
		var class txn.Class
		switch fields[1] {
		case "firm":
			class = txn.Firm
		case "soft":
			class = txn.Soft
		case "nonrt":
			class = txn.NonRealTime
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown class %q", lineNo, fields[1])
		}
		deadline, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: deadline: %v", lineNo, err)
		}
		reads, err := parseIDList(fields[3])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: reads: %v", lineNo, err)
		}
		writes, err := parseIDList(fields[4])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: writes: %v", lineNo, err)
		}
		var deletes []store.ObjectID
		if len(fields) == 6 {
			deletes, err = parseIDList(fields[5])
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: deletes: %v", lineNo, err)
			}
		}
		specs = append(specs, &Spec{
			Arrival:  simtime.Time(arrival),
			Class:    class,
			Deadline: time.Duration(deadline),
			Reads:    reads,
			Writes:   writes,
			Deletes:  deletes,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return specs, nil
}

func parseIDList(s string) ([]store.ObjectID, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]store.ObjectID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, err
		}
		ids = append(ids, store.ObjectID(v))
	}
	return ids, nil
}

// MeanServiceDemand estimates the mean CPU demand per transaction under
// a cost model with the given per-operation costs — used to sanity-check
// where saturation should land.
func MeanServiceDemand(cfg Config, perRead, perWrite, fixed time.Duration) time.Duration {
	read := float64(fixed) + float64(cfg.ReadsPerTxn)*float64(perRead)
	write := read + float64(cfg.WritesPerTxn)*float64(perWrite)
	mean := (1-cfg.WriteFraction)*read + cfg.WriteFraction*write
	return time.Duration(math.Round(mean))
}
