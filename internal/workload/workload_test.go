package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/txn"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Default()
	cfg.Count = 100
	a := NewGenerator(cfg).All()
	b := NewGenerator(cfg).All()
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("counts = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || len(a[i].Reads) != len(b[i].Reads) ||
			a[i].IsWrite() != b[i].IsWrite() {
			t.Fatalf("spec %d differs between equal seeds", i)
		}
	}
	cfg.Seed = 2
	c := NewGenerator(cfg).All()
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestArrivalsMonotoneAndPoissonish(t *testing.T) {
	cfg := Default()
	cfg.ArrivalRate = 1000
	cfg.Count = 5000
	specs := NewGenerator(cfg).All()
	var prev int64 = -1
	for _, s := range specs {
		if int64(s.Arrival) < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = int64(s.Arrival)
	}
	// Mean rate over the session should be within 10% of nominal.
	span := specs[len(specs)-1].Arrival.Seconds()
	rate := float64(len(specs)) / span
	if math.Abs(rate-1000)/1000 > 0.1 {
		t.Fatalf("observed rate %.1f, want ~1000", rate)
	}
}

func TestWriteFraction(t *testing.T) {
	for _, wf := range []float64{0, 0.2, 0.8, 1} {
		cfg := Default()
		cfg.WriteFraction = wf
		cfg.Count = 4000
		writes := 0
		for _, s := range NewGenerator(cfg).All() {
			if s.IsWrite() {
				writes++
				if s.Deadline != cfg.WriteDeadline {
					t.Fatal("write txn must carry the write deadline")
				}
				if len(s.Writes) != cfg.WritesPerTxn {
					t.Fatalf("writes per txn = %d", len(s.Writes))
				}
			} else if s.Deadline != cfg.ReadDeadline {
				t.Fatal("read txn must carry the read deadline")
			}
		}
		got := float64(writes) / 4000
		if math.Abs(got-wf) > 0.03 {
			t.Fatalf("write fraction %.3f, want %.2f", got, wf)
		}
	}
}

func TestReadsDistinctAndInRange(t *testing.T) {
	cfg := Default()
	cfg.DBSize = 10
	cfg.ReadsPerTxn = 5
	cfg.Count = 200
	for _, s := range NewGenerator(cfg).All() {
		seen := map[store.ObjectID]bool{}
		for _, id := range s.Reads {
			if seen[id] {
				t.Fatal("duplicate read object")
			}
			seen[id] = true
			if int(id) >= cfg.DBSize {
				t.Fatalf("object %d out of range", id)
			}
		}
	}
}

func TestWritesAreSubsetOfReads(t *testing.T) {
	cfg := Default()
	cfg.WriteFraction = 1
	cfg.Count = 100
	for _, s := range NewGenerator(cfg).All() {
		reads := map[store.ObjectID]bool{}
		for _, id := range s.Reads {
			reads[id] = true
		}
		for _, id := range s.Writes {
			if !reads[id] {
				t.Fatal("update transaction wrote an unread object")
			}
		}
	}
}

func TestNonRTFraction(t *testing.T) {
	cfg := Default()
	cfg.NonRTFraction = 0.3
	cfg.Count = 3000
	n := 0
	for _, s := range NewGenerator(cfg).All() {
		if s.Class == txn.NonRealTime {
			n++
		}
	}
	got := float64(n) / 3000
	if math.Abs(got-0.3) > 0.05 {
		t.Fatalf("non-RT fraction %.3f", got)
	}
}

func TestConfigClamping(t *testing.T) {
	g := NewGenerator(Config{Count: 5, ReadsPerTxn: 2, WritesPerTxn: 10, WriteFraction: 1, DBSize: 4})
	for _, s := range g.All() {
		if len(s.Writes) > len(s.Reads) {
			t.Fatal("writes not clamped to reads")
		}
	}
}

func TestPopulateAndValue(t *testing.T) {
	cfg := Default()
	cfg.DBSize = 50
	db := store.New()
	Populate(db, cfg)
	if db.Len() != 50 {
		t.Fatalf("Len = %d", db.Len())
	}
	v, ok := db.Get(7)
	if !ok || len(v) != cfg.ValueSize {
		t.Fatalf("value = %q %v", v, ok)
	}
	g := NewGenerator(cfg)
	img := g.Value(7, 3)
	if len(img) != cfg.ValueSize {
		t.Fatalf("image size = %d", len(img))
	}
}

func TestTraceRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Count = 200
	cfg.NonRTFraction = 0.1
	specs := NewGenerator(cfg).All()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, specs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("len = %d, want %d", len(got), len(specs))
	}
	for i := range specs {
		a, b := specs[i], got[i]
		if a.Arrival != b.Arrival || a.Class != b.Class || a.Deadline != b.Deadline {
			t.Fatalf("spec %d header mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Reads) != len(b.Reads) || len(a.Writes) != len(b.Writes) {
			t.Fatalf("spec %d sets mismatch", i)
		}
		for j := range a.Reads {
			if a.Reads[j] != b.Reads[j] {
				t.Fatalf("spec %d read %d mismatch", i, j)
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"1 firm",          // too few fields
		"x firm 5 1,2 -",  // bad arrival
		"1 weird 5 1,2 -", // bad class
		"1 firm x 1,2 -",  // bad deadline
		"1 firm 5 a,b -",  // bad read list
		"1 firm 5 1,2 z",  // bad write list
	}
	for _, c := range cases {
		if _, err := ReadTrace(bytes.NewReader([]byte(c + "\n"))); err == nil {
			t.Fatalf("trace %q accepted", c)
		}
	}
	// Comments and blank lines are fine.
	specs, err := ReadTrace(bytes.NewReader([]byte("# comment\n\n1 soft 5 1,2 -\n")))
	if err != nil || len(specs) != 1 || specs[0].Class != txn.Soft {
		t.Fatalf("specs = %v err = %v", specs, err)
	}
}

func TestMeanServiceDemand(t *testing.T) {
	cfg := Default()
	cfg.WriteFraction = 0 // pure read: fixed + 4 reads
	d := MeanServiceDemand(cfg, 600*time.Microsecond, 800*time.Microsecond, 800*time.Microsecond)
	if d != 3200*time.Microsecond {
		t.Fatalf("demand = %v", d)
	}
	cfg.WriteFraction = 1 // adds 2 writes
	d = MeanServiceDemand(cfg, 600*time.Microsecond, 800*time.Microsecond, 800*time.Microsecond)
	if d != 4800*time.Microsecond {
		t.Fatalf("demand = %v", d)
	}
}

func TestSoftFraction(t *testing.T) {
	cfg := Default()
	cfg.SoftFraction = 0.25
	cfg.Count = 3000
	soft := 0
	for _, s := range NewGenerator(cfg).All() {
		if s.Class == txn.Soft {
			soft++
		}
	}
	got := float64(soft) / 3000
	if math.Abs(got-0.25) > 0.05 {
		t.Fatalf("soft fraction %.3f", got)
	}
}

func TestTraceRoundTripSoft(t *testing.T) {
	cfg := Default()
	cfg.Count = 100
	cfg.SoftFraction = 0.5
	specs := NewGenerator(cfg).All()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, specs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if specs[i].Class != got[i].Class {
			t.Fatalf("spec %d class mismatch", i)
		}
	}
}

func TestChurnFraction(t *testing.T) {
	cfg := Default()
	cfg.ChurnFraction = 0.3
	cfg.Count = 3000
	churn := 0
	freshIDs := map[store.ObjectID]bool{}
	for _, s := range NewGenerator(cfg).All() {
		if len(s.Deletes) > 0 {
			churn++
			if len(s.Deletes) != 1 || len(s.Writes) != 1 {
				t.Fatalf("churn spec = %+v", s)
			}
			if int(s.Deletes[0]) >= cfg.DBSize {
				t.Fatal("delete target outside the preload range")
			}
			id := s.Writes[0]
			if int(id) < cfg.DBSize {
				t.Fatal("churn insert inside the preload range")
			}
			if freshIDs[id] {
				t.Fatal("churn insert id reused")
			}
			freshIDs[id] = true
			if !s.IsWrite() {
				t.Fatal("churn spec not a write")
			}
		}
	}
	got := float64(churn) / 3000
	if math.Abs(got-0.3) > 0.05 {
		t.Fatalf("churn fraction %.3f", got)
	}
}

func TestTraceRoundTripChurn(t *testing.T) {
	cfg := Default()
	cfg.Count = 200
	cfg.ChurnFraction = 0.4
	specs := NewGenerator(cfg).All()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, specs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if len(specs[i].Deletes) != len(got[i].Deletes) {
			t.Fatalf("spec %d deletes mismatch", i)
		}
		for j := range specs[i].Deletes {
			if specs[i].Deletes[j] != got[i].Deletes[j] {
				t.Fatalf("spec %d delete %d mismatch", i, j)
			}
		}
	}
}

func TestLegacyFiveFieldTrace(t *testing.T) {
	specs, err := ReadTrace(bytes.NewReader([]byte("1 firm 5 1,2 3\n")))
	if err != nil || len(specs) != 1 || len(specs[0].Deletes) != 0 {
		t.Fatalf("legacy trace: %v %v", specs, err)
	}
}
