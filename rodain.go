// Package rodain is a real-time main-memory database whose availability
// comes from a hot stand-by mirror node kept up to date with transaction
// logs shipped synchronously at commit — a reproduction of the RODAIN
// architecture (Niklander & Raatikainen, "Using Logs to Increase
// Availability in Real-Time Main-Memory Database", IPPS/SPDP 2000).
//
// # Embedded use
//
//	db, err := rodain.Open(rodain.Options{})
//	defer db.Close()
//	err = db.Update(50*time.Millisecond, func(tx *rodain.Tx) error {
//	    v, err := tx.Read(42)
//	    if err != nil {
//	        return err
//	    }
//	    return tx.Write(42, append(v, '!'))
//	})
//
// Transactions carry firm deadlines: past the deadline they are aborted
// (ErrDeadline), never late. Writes are deferred — an abort simply
// discards the private workspace.
//
// # A replicated pair
//
//	primary, _ := rodain.OpenPrimary(opts, "10.0.0.1:7000")
//	mirror, _  := rodain.OpenMirror(opts, "10.0.0.1:7000", "10.0.0.2:7000")
//
// The primary commits each transaction once the mirror acknowledges its
// log records: one message round trip instead of a disk write on the
// commit path. If the primary fails, the mirror takes over almost
// instantly (watch Events for Takeover) and logs to its own disk until
// the failed node rejoins — always as mirror.
package rodain

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Re-exported fundamental types.
type (
	// ObjectID addresses one data item.
	ObjectID = store.ObjectID
	// Tx is the transactional operation surface passed to Update/View
	// bodies.
	Tx = core.Tx
	// Class is a transaction criticality class.
	Class = txn.Class
	// Event is a node role-change notification.
	Event = core.Event
	// EventKind classifies Events.
	EventKind = core.EventKind
)

// Criticality classes.
const (
	// Firm transactions abort when their deadline expires.
	Firm = txn.Firm
	// Soft transactions finish late but count as missed.
	Soft = txn.Soft
	// NonRealTime transactions have no deadline and run in a reserved
	// dispatch share.
	NonRealTime = txn.NonRealTime
)

// Role-change event kinds.
const (
	EventMirrorAttached = core.EventMirrorAttached
	EventMirrorLost     = core.EventMirrorLost
	EventTakeover       = core.EventTakeover
)

// Errors surfaced by transactions.
var (
	// ErrDeadline: the firm deadline expired before commit.
	ErrDeadline = core.ErrDeadline
	// ErrConflict: concurrency control gave up after restarts.
	ErrConflict = core.ErrConflict
	// ErrOverload: the overload manager denied admission.
	ErrOverload = core.ErrOverload
	// ErrNotServing: this node is a mirror; transactions execute only
	// on the primary.
	ErrNotServing = core.ErrNotServing
	// ErrClosed: the database is closed.
	ErrClosed = core.ErrStopped
)

// Durability selects what happens on the commit path of a node running
// without a mirror.
type Durability int

// Durability levels for single-node operation. A node with an attached
// mirror always ships logs; these control the fallback.
const (
	// DurDisk stores log records on the local log device before commit
	// (the paper's transient mode).
	DurDisk Durability = iota
	// DurRelaxed builds log records but does not wait for the device —
	// the paper's "disk writing turned off" configuration.
	DurRelaxed
	// DurNone writes no logs at all (volatile, fastest).
	DurNone
)

func (d Durability) logMode() core.LogMode {
	switch d {
	case DurRelaxed:
		return core.LogDiscard
	case DurNone:
		return core.LogNone
	default:
		return core.LogDisk
	}
}

// Options configures a database node.
type Options struct {
	// Name labels the node in events and errors.
	Name string
	// LogPath is the log file. Empty keeps the log in memory (useful
	// for tests and for DurNone/DurRelaxed nodes).
	LogPath string
	// Durability is the single-node commit path (see Durability).
	Durability Durability
	// Protocol selects concurrency control: "dati" (default), "ti",
	// "da" or "bc".
	Protocol string
	// Workers is the number of executor goroutines (default 1).
	Workers int
	// MaxActive caps concurrently admitted transactions (default 50).
	MaxActive int
	// MaxRestarts bounds concurrency-control restarts per transaction.
	MaxRestarts int
	// NonRTReserve is the dispatch fraction reserved for non-real-time
	// transactions (default 0.05).
	NonRTReserve float64
	// GroupCommitWindow selects the legacy fixed-window disk batching
	// when > 0; at zero the adaptive leader/follower group-fsync
	// committer is used (sync immediately when idle, batch under load).
	GroupCommitWindow time.Duration
	// MaxCohort caps how many committing transactions one group-commit
	// cohort carries — a wire batch to the mirror, or one vectored
	// append + sync on the transient primary (default 64).
	MaxCohort int
	// MaxCohortHold bounds the adaptive hold window group commit may
	// wait for stragglers. Zero keeps the default (200µs); negative
	// disables holding.
	MaxCohortHold time.Duration
	// SimulatedDiskLatency, when > 0, adds this latency to every log
	// sync — a stand-in for the slow log disk of the paper's era on
	// machines whose real storage is too fast to show the effect.
	SimulatedDiskLatency time.Duration
	// AckTimeout bounds the wait for a mirror acknowledgment.
	AckTimeout time.Duration
	// HeartbeatEvery and HeartbeatMisses tune failure detection.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// RecoverWorkers sizes the parallel log-replay pool used by
	// Recover/RecoverFromDir: groups with disjoint write sets install
	// concurrently, bit-identical to a sequential replay. 0 uses one
	// worker per CPU; negative forces sequential replay.
	RecoverWorkers int
	// MirrorApplyWorkers sizes a mirror node's parallel apply pool
	// (same semantics: 0 = one per CPU, negative = inline sequential).
	// Acknowledgment latency is unaffected either way.
	MirrorApplyWorkers int
	// LogSegmentBytes switches the file log (LogPath must be set) to a
	// segmented store rolling at this size: LogPath becomes a directory
	// of segment files, and the checkpoint cycle reclaims space by
	// unlinking whole sealed segments instead of keeping one
	// ever-growing file. Zero keeps the single-file log.
	LogSegmentBytes int64
	// CheckpointDir, when set, starts a background checkpoint-and-
	// truncate scheduler writing into this directory. At least one of
	// CheckpointEvery/CheckpointLogBytes must also be set for it to ever
	// fire.
	CheckpointDir string
	// CheckpointEvery triggers a background checkpoint on this interval.
	CheckpointEvery time.Duration
	// CheckpointLogBytes triggers a background checkpoint after this
	// many bytes of log growth since the previous one.
	CheckpointLogBytes uint64
	// FrozenCheckpoint selects the legacy stop-the-world checkpoint
	// instead of the fuzzy stripe-incremental one — an ablation knob;
	// see DESIGN §8.
	FrozenCheckpoint bool
	// NoReadOnlyFastPath disables the read-only snapshot fast path: View
	// (and ExecReadOnly) transactions register every read with the
	// concurrency controller and commit through full validation and the
	// log path, like any update. An ablation knob; see DESIGN §8.
	NoReadOnlyFastPath bool
}

func (o Options) coreConfig() (core.Config, error) {
	cfg := core.Config{
		Workers:            o.Workers,
		MaxRestarts:        o.MaxRestarts,
		NonRTReserve:       o.NonRTReserve,
		GroupCommitWindow:  o.GroupCommitWindow,
		MaxCohort:          o.MaxCohort,
		MaxCohortHold:      o.MaxCohortHold,
		AckTimeout:         o.AckTimeout,
		HeartbeatEvery:     o.HeartbeatEvery,
		HeartbeatMisses:    o.HeartbeatMisses,
		RecoverWorkers:     o.RecoverWorkers,
		MirrorApplyWorkers: o.MirrorApplyWorkers,
		FrozenCheckpoint:   o.FrozenCheckpoint,
		NoReadOnlyFastPath: o.NoReadOnlyFastPath,
	}
	if o.MaxActive > 0 {
		cfg.Overload = sched.OverloadConfig{MaxActive: o.MaxActive}
	}
	if o.Protocol != "" {
		k, err := occ.ParseKind(o.Protocol)
		if err != nil {
			return cfg, err
		}
		cfg.Protocol = k
	}
	return cfg, nil
}

func (o Options) openLog() (logstore.Store, error) {
	var st logstore.Store
	switch {
	case o.LogPath == "":
		st = logstore.NewMem()
	case o.LogSegmentBytes > 0:
		s, err := logstore.OpenSegmented(o.LogPath, o.LogSegmentBytes)
		if err != nil {
			return nil, err
		}
		st = s
	default:
		f, err := logstore.OpenFile(o.LogPath)
		if err != nil {
			return nil, err
		}
		st = f
	}
	if o.SimulatedDiskLatency > 0 {
		st = logstore.NewDelayed(st, o.SimulatedDiskLatency)
	}
	return st, nil
}

// DB is one RODAIN node. Depending on how it was opened it is an
// embedded single node, the primary of a pair, or a mirror (which serves
// transactions only after a takeover).
type DB struct {
	node      *core.Node
	log       logstore.Store
	ckptSched *core.CheckpointScheduler
}

// Open starts an embedded single-node database.
func Open(opts Options) (*DB, error) {
	db, _, err := open(opts, "", false)
	return db, err
}

// OpenPrimary starts a database-server node that accepts a mirror on
// replListen. Until a mirror attaches it runs in transient mode,
// committing per opts.Durability.
func OpenPrimary(opts Options, replListen string) (*DB, error) {
	if replListen == "" {
		return nil, errors.New("rodain: OpenPrimary needs a replication listen address")
	}
	db, _, err := open(opts, replListen, false)
	return db, err
}

func open(opts Options, replListen string, mirror bool) (*DB, *core.Node, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, nil, err
	}
	log, err := opts.openLog()
	if err != nil {
		return nil, nil, err
	}
	name := opts.Name
	if name == "" {
		name = "rodain"
	}
	node := core.NewNode(name, cfg, store.New(), log)
	if !mirror {
		if err := node.ServePrimary(replListen, opts.Durability.logMode()); err != nil {
			log.Close()
			return nil, nil, err
		}
	}
	db := &DB{node: node, log: log}
	if opts.CheckpointDir != "" && (opts.CheckpointEvery > 0 || opts.CheckpointLogBytes > 0) {
		db.ckptSched = node.StartCheckpointScheduler(opts.CheckpointDir, core.CheckpointSchedulerOptions{
			Every:    opts.CheckpointEvery,
			LogBytes: opts.CheckpointLogBytes,
		})
	}
	return db, node, nil
}

// OpenMirror starts a hot stand-by for the primary at primaryAddr. The
// returned DB rejects transactions (ErrNotServing) until the primary
// fails, at which point this node takes over, listens for a rejoining
// mirror on takeoverListen, and begins serving. Watch Events for
// EventTakeover.
func OpenMirror(opts Options, primaryAddr, takeoverListen string) (*DB, error) {
	db, node, err := open(opts, "", true)
	if err != nil {
		return nil, err
	}
	go func() {
		// RunMirror blocks for the node's mirror lifetime and handles
		// takeover itself; errors after close are benign.
		_ = node.RunMirror(primaryAddr, takeoverListen)
	}()
	return db, nil
}

// Load bulk-inserts an object outside any transaction (initial
// population; not logged, not replicated — do it before attaching a
// mirror or run it as a transaction instead).
func (db *DB) Load(id ObjectID, value []byte) { db.node.DB().Put(id, value) }

// Get reads the latest committed value outside any transaction.
func (db *DB) Get(id ObjectID) ([]byte, bool) { return db.node.DB().Get(id) }

// Len reports the number of objects.
func (db *DB) Len() int { return db.node.DB().Len() }

// Update runs fn as a firm-deadline read-write transaction. fn may be
// retried on concurrency-control restarts; it must be a pure function of
// its Tx reads.
func (db *DB) Update(deadline time.Duration, fn func(*Tx) error) error {
	return db.node.Execute(core.Request{Class: txn.Firm, Deadline: deadline, Do: fn})
}

// View runs fn as a firm-deadline read-only transaction. Its reads skip
// conflict registration and commit through the controller's snapshot
// fast path — no serial ticket, no log record, no mirror round trip
// (unless Options.NoReadOnlyFastPath disabled it). Writes are not
// prevented: a View body that writes anyway is transparently demoted to
// the fully registered read-write path at the cost of one restart.
func (db *DB) View(deadline time.Duration, fn func(*Tx) error) error {
	return db.node.Execute(core.Request{Class: txn.Firm, Deadline: deadline, ReadOnly: true, Do: fn})
}

// Exec runs a transaction with full control over class, deadline and
// criticality.
func (db *DB) Exec(class Class, deadline time.Duration, criticality int, fn func(*Tx) error) error {
	return db.node.Execute(core.Request{Class: class, Deadline: deadline, Criticality: criticality, Do: fn})
}

// ExecReadOnly is Exec with the read-only declaration View makes: full
// control over class, deadline and criticality, reads on the snapshot
// fast path.
func (db *DB) ExecReadOnly(class Class, deadline time.Duration, criticality int, fn func(*Tx) error) error {
	return db.node.Execute(core.Request{Class: class, Deadline: deadline, Criticality: criticality, ReadOnly: true, Do: fn})
}

// Events delivers role-change notifications (mirror attached/lost,
// takeover).
func (db *DB) Events() <-chan Event { return db.node.Events() }

// ReplAddr reports the node's replication listener address, "" if none
// (mirrors gain one after takeover).
func (db *DB) ReplAddr() string { return db.node.ReplAddr() }

// Serving reports whether the node currently executes transactions.
func (db *DB) Serving() bool { return db.node.Engine() != nil }

// Overloaded reports whether the overload manager would deny an
// arriving transaction right now. A service front end consults it at
// the socket to answer MISS overload without queueing any work; the
// check is advisory — admission proper still happens per transaction.
// It is false on a node that is not serving (those requests fail with
// ErrNotServing instead).
func (db *DB) Overloaded() bool {
	e := db.node.Engine()
	return e != nil && e.AtAdmissionLimit()
}

// Stats summarizes the node's transaction processing so far.
type Stats struct {
	// Outcome is the submitted/committed/missed tally.
	Outcome metrics.Snapshot
	// MissRatio is missed/submitted.
	MissRatio float64
	// MeanResponse is the mean submit→commit latency.
	MeanResponse time.Duration
	// MeanCommitWait is the mean validation→commit (log wait) latency —
	// the cost the hot stand-by removes from the critical path.
	MeanCommitWait time.Duration
	// P95Response is the 95th-percentile response time.
	P95Response time.Duration
	// Mode is the node's current role.
	Mode string
	// LogMode is the current commit path.
	LogMode string
	// ROFastCommits counts read-only transactions committed on the
	// snapshot fast path (no serial ticket, no log record).
	ROFastCommits uint64
	// ROFallbacks counts read-only fast-path attempts that fell back to
	// full validation (snapshot no longer certifiable).
	ROFallbacks uint64
	// ReadLatency digests the per-read data-access latency distribution.
	ReadLatency metrics.HistogramSummary
}

// Stats returns a snapshot of the node's counters. Zero for a mirror
// that has never served.
func (db *DB) Stats() Stats {
	e := db.node.Engine()
	if e == nil {
		return Stats{Mode: db.node.Mode().String()}
	}
	snap := e.Outcome().Snapshot()
	occStats := e.Controller().Stats()
	return Stats{
		Outcome:        snap,
		MissRatio:      snap.MissRatio(),
		MeanResponse:   e.ResponseTimes().Mean(),
		MeanCommitWait: e.CommitWaits().Mean(),
		P95Response:    e.ResponseTimes().Quantile(0.95),
		Mode:           db.node.Mode().String(),
		LogMode:        e.LogMode().String(),
		ROFastCommits:  occStats.ROFastCommits,
		ROFallbacks:    occStats.ROFallbacks,
		ReadLatency:    occStats.ReadLatency,
	}
}

// Recover replays a stored redo log (as written by a transient primary
// or a mirror) into the database: the path taken when both nodes of a
// pair have failed and the survivor restarts from disk. The replay runs
// on Options.RecoverWorkers conflict-aware workers (default one per
// CPU); the result is bit-identical to a sequential pass. Hand Recover a
// buffered reader — it decodes one record at a time.
func (db *DB) Recover(r io.Reader) (RecoverStats, error) {
	return db.node.RecoverFromLog(r)
}

// RecoverStats summarizes a log replay.
type RecoverStats = wal.RecoverStats

// Checkpoint writes a transaction-consistent snapshot of the database to
// w and returns the validation order it corresponds to. Replaying the
// log from that serial over the checkpoint reproduces the database.
// Validation freezes for the copy; FuzzyCheckpoint avoids the freeze.
func (db *DB) Checkpoint(w io.Writer) (uint64, error) {
	return db.node.Checkpoint(w)
}

// CheckpointStats summarizes one fuzzy checkpoint cycle.
type CheckpointStats = core.CheckpointStats

// FuzzyCheckpoint writes a fuzzy, stripe-incremental checkpoint to w:
// each store stripe is copied under only its own lock, tagged with a
// per-stripe serial watermark, while commits proceed on the other
// stripes. RecoverFromDir (and DecodeCheckpoint-based tools) replay the
// log suffix per stripe watermark.
func (db *DB) FuzzyCheckpoint(w io.Writer) (CheckpointStats, error) {
	return db.node.FuzzyCheckpoint(w)
}

// CheckpointToDir writes an atomic checkpoint file into dir and then
// truncates the node's log — the checkpoint-and-truncate cycle that
// bounds recovery time. Pair it with RecoverFromDir.
func (db *DB) CheckpointToDir(dir string) (uint64, error) {
	return db.node.CheckpointToDir(dir)
}

// RecoverFromDir restores the database from a CheckpointToDir directory
// plus an optional log tail (nil for none).
func (db *DB) RecoverFromDir(dir string, log io.Reader) (RecoverStats, error) {
	return db.node.RecoverFromDir(dir, log)
}

// Close shuts the node down gracefully, draining transactions and
// syncing the log.
func (db *DB) Close() error {
	if db.ckptSched != nil {
		db.ckptSched.Stop()
	}
	err := db.node.Close()
	if cerr := db.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash kills the node abruptly (testing failure scenarios).
func (db *DB) Crash() {
	if db.ckptSched != nil {
		db.ckptSched.Stop()
	}
	db.node.Crash()
}

func (db *DB) String() string {
	return fmt.Sprintf("rodain.DB{%s %s}", db.node.Name(), db.node.Mode())
}
