package rodain

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < 100; i++ {
		db.Load(ObjectID(i), []byte(fmt.Sprintf("v%d", i)))
	}
	return db
}

func TestOpenUpdateView(t *testing.T) {
	db := openTest(t, Options{})
	err := db.Update(time.Second, func(tx *Tx) error {
		v, err := tx.Read(1)
		if err != nil {
			return err
		}
		return tx.Write(1, append(v, '!'))
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	err = db.View(time.Second, func(tx *Tx) error {
		v, err := tx.Read(1)
		got = v
		return err
	})
	if err != nil || string(got) != "v1!" {
		t.Fatalf("view: %q %v", got, err)
	}
	if db.Len() != 100 {
		t.Fatalf("Len = %d", db.Len())
	}
	v, ok := db.Get(1)
	if !ok || string(v) != "v1!" {
		t.Fatalf("Get = %q %v", v, ok)
	}
}

func TestStats(t *testing.T) {
	db := openTest(t, Options{})
	db.Update(time.Second, func(tx *Tx) error { return tx.Write(1, []byte("x")) })
	s := db.Stats()
	if s.Outcome.Committed != 1 || s.Mode != "transient" {
		t.Fatalf("stats = %+v", s)
	}
	if s.LogMode != "disk" {
		t.Fatalf("log mode = %s", s.LogMode)
	}
	if db.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDurabilityLevels(t *testing.T) {
	for _, d := range []Durability{DurDisk, DurRelaxed, DurNone} {
		db := openTest(t, Options{Durability: d})
		if err := db.Update(time.Second, func(tx *Tx) error {
			return tx.Write(1, []byte("y"))
		}); err != nil {
			t.Fatalf("durability %v: %v", d, err)
		}
	}
}

func TestFileBackedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rodain.log")
	db, err := Open(Options{LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	db.Load(1, []byte("v"))
	if err := db.Update(time.Second, func(tx *Tx) error {
		return tx.Write(1, []byte("durable"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadProtocol(t *testing.T) {
	if _, err := Open(Options{Protocol: "nope"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestExecClasses(t *testing.T) {
	db := openTest(t, Options{Workers: 2})
	if err := db.Exec(NonRealTime, 0, 0, func(tx *Tx) error {
		_, err := tx.Read(1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := db.Exec(Firm, time.Nanosecond, 0, func(tx *Tx) error {
		time.Sleep(5 * time.Millisecond)
		_, err := tx.Read(1)
		return err
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseRejects(t *testing.T) {
	db, _ := Open(Options{})
	db.Close()
	if err := db.Update(time.Second, func(tx *Tx) error { return nil }); err == nil {
		t.Fatal("update after close succeeded")
	}
}

func TestOpenPrimaryValidation(t *testing.T) {
	if _, err := OpenPrimary(Options{}, ""); err == nil {
		t.Fatal("empty listen address accepted")
	}
}

func TestPairAndFailoverThroughPublicAPI(t *testing.T) {
	opts := Options{
		Workers:         2,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
	}
	primary, err := OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		primary.Load(ObjectID(i), []byte("init"))
	}
	mirror, err := OpenMirror(opts, primary.ReplAddr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()

	waitKind(t, primary, EventMirrorAttached)
	if !primary.Serving() || mirror.Serving() {
		t.Fatalf("roles wrong: primary serving=%v mirror serving=%v",
			primary.Serving(), mirror.Serving())
	}
	if err := primary.Update(time.Second, func(tx *Tx) error {
		return tx.Write(7, []byte("shipped"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := mirror.Update(time.Second, func(tx *Tx) error { return nil }); !errors.Is(err, ErrNotServing) {
		t.Fatalf("mirror accepted a transaction: %v", err)
	}
	if primary.Stats().LogMode != "ship" {
		t.Fatalf("log mode = %s", primary.Stats().LogMode)
	}

	primary.Crash()
	waitKind(t, mirror, EventTakeover)
	// Promoted mirror serves, with the committed data.
	err = mirror.Update(time.Second, func(tx *Tx) error {
		v, err := tx.Read(7)
		if err != nil {
			return err
		}
		if string(v) != "shipped" {
			return fmt.Errorf("lost committed write: %q", v)
		}
		return tx.Write(7, []byte("after"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if mirror.ReplAddr() == "" {
		t.Fatal("promoted node has no replication listener for rejoin")
	}
}

func waitKind(t *testing.T, db *DB, kind EventKind) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-db.Events():
			if ev.Kind == kind {
				return
			}
		case <-deadline:
			t.Fatalf("event %v not seen", kind)
		}
	}
}

func TestPublicCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, Options{})
	for i := 0; i < 20; i++ {
		if err := db.Update(time.Second, func(tx *Tx) error {
			return tx.Write(ObjectID(i), []byte("v2"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	serial, err := db.CheckpointToDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 20 {
		t.Fatalf("serial = %d", serial)
	}
	// More work after the checkpoint goes only to the (truncated) log.
	if err := db.Update(time.Second, func(tx *Tx) error {
		return tx.Write(1, []byte("v3"))
	}); err != nil {
		t.Fatal(err)
	}

	// A fresh node restores from the checkpoint alone (the in-memory
	// log is gone with the "crashed" node).
	db2, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.RecoverFromDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSerial != 20 {
		t.Fatalf("LastSerial = %d", st.LastSerial)
	}
	v, _ := db2.Get(5)
	if string(v) != "v2" {
		t.Fatalf("object 5 = %q", v)
	}
}

func TestPublicCheckpointStream(t *testing.T) {
	db := openTest(t, Options{})
	var buf bytes.Buffer
	serial, err := db.Checkpoint(&buf)
	if err != nil || serial != 0 {
		t.Fatalf("checkpoint: serial=%d err=%v", serial, err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty checkpoint stream")
	}
}

func TestPublicDelete(t *testing.T) {
	db := openTest(t, Options{})
	err := db.Update(time.Second, func(tx *Tx) error {
		if _, err := tx.Read(5); err != nil {
			return err
		}
		return tx.Delete(5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get(5); ok {
		t.Fatal("object survived delete")
	}
	// Reading a deleted object inside a transaction fails like any
	// missing object.
	err = db.View(time.Second, func(tx *Tx) error {
		_, err := tx.Read(5)
		return err
	})
	if err == nil {
		t.Fatal("read of deleted object succeeded")
	}
}

func TestPublicRecover(t *testing.T) {
	// A crashed node's file log replays through the public API.
	path := filepath.Join(t.TempDir(), "wal")
	db1, err := Open(Options{LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	db1.Load(1, []byte("v0"))
	if err := db1.Update(time.Second, func(tx *Tx) error {
		return tx.Write(1, []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	db1.Crash()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db2, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.Recover(f)
	if err != nil || st.Applied != 1 {
		t.Fatalf("recover: %+v %v", st, err)
	}
	v, ok := db2.Get(1)
	if !ok || string(v) != "v1" {
		t.Fatalf("recovered value = %q %v", v, ok)
	}
}

func TestOpenMirrorBadOptions(t *testing.T) {
	if _, err := OpenMirror(Options{Protocol: "bogus"}, "127.0.0.1:1", ""); err == nil {
		t.Fatal("bad protocol accepted by OpenMirror")
	}
}
